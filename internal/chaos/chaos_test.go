package chaos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBlockPartitionCoversAndBalances(t *testing.T) {
	p := Block(100, 8)
	c := p.Counts()
	total := 0
	for _, n := range c {
		total += n
	}
	if total != 100 {
		t.Fatalf("coverage: %d", total)
	}
	for i, n := range c {
		if n > 13 {
			t.Fatalf("proc %d has %d elements", i, n)
		}
	}
	// Contiguity.
	for g := 1; g < 100; g++ {
		if p.Owner[g] < p.Owner[g-1] {
			t.Fatal("block owners not monotone")
		}
	}
}

func TestBlockRangeMatchesOwner(t *testing.T) {
	f := func(nRaw, npRaw uint8) bool {
		n := int(nRaw)%500 + 1
		np := int(npRaw)%8 + 1
		p := Block(n, np)
		for pr := 0; pr < np; pr++ {
			lo, hi := BlockRange(n, np, pr)
			for g := lo; g < hi; g++ {
				if p.Owner[g] != pr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicPartition(t *testing.T) {
	p := Cyclic(10, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for g, o := range p.Owner {
		if o != want[g] {
			t.Fatalf("owner[%d] = %d", g, o)
		}
	}
}

func TestRCBBalanceAndLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4096
	coords := make([][3]float64, n)
	for i := range coords {
		coords[i] = [3]float64{rng.Float64() * 64, rng.Float64() * 64, rng.Float64() * 64}
	}
	p := RCB(coords, 8)
	counts := p.Counts()
	for pr, c := range counts {
		if c < n/8-64 || c > n/8+64 {
			t.Fatalf("proc %d owns %d of %d (imbalanced)", pr, c, n)
		}
	}
	// Locality: nearby points should mostly share an owner. Compare the
	// average intra-owner distance against the global average.
	intra, intraN := 0.0, 0
	global, globalN := 0.0, 0
	for k := 0; k < 20000; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		d := 0.0
		for dim := 0; dim < 3; dim++ {
			dd := coords[a][dim] - coords[b][dim]
			d += dd * dd
		}
		global += d
		globalN++
		if p.Owner[a] == p.Owner[b] {
			intra += d
			intraN++
		}
	}
	if intra/float64(intraN) >= global/float64(globalN) {
		t.Fatal("RCB shows no spatial locality")
	}
}

func TestRCBDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coords := make([][3]float64, 500)
	for i := range coords {
		coords[i] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	p1 := RCB(coords, 4)
	p2 := RCB(coords, 4)
	for g := range p1.Owner {
		if p1.Owner[g] != p2.Owner[g] {
			t.Fatal("RCB not deterministic")
		}
	}
}

func TestRCBNonPowerOfTwoProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	coords := make([][3]float64, 999)
	for i := range coords {
		coords[i] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	p := RCB(coords, 3)
	counts := p.Counts()
	for pr, c := range counts {
		if c < 999/3-40 || c > 999/3+40 {
			t.Fatalf("proc %d owns %d", pr, c)
		}
	}
}

func TestAlmostOwnerComputes(t *testing.T) {
	part := &Partition{Owner: []int{0, 0, 1, 1}, NProcs: 2}
	iters := [][]int{
		{0, 1},    // both proc 0 -> 0
		{2, 3},    // both proc 1 -> 1
		{0, 2},    // tie -> first element's owner, 0
		{2, 0},    // tie -> 1
		{1, 2, 3}, // majority proc 1 -> 1
	}
	got := AlmostOwnerComputes(iters, part)
	if len(got[0]) != 2 || got[0][0] != 0 || got[0][1] != 2 {
		t.Fatalf("proc0 iters = %v", got[0])
	}
	if len(got[1]) != 3 || got[1][0] != 1 || got[1][1] != 3 || got[1][2] != 4 {
		t.Fatalf("proc1 iters = %v", got[1])
	}
}

func TestRemapOffsetsAreDenseAndOrdered(t *testing.T) {
	part := &Partition{Owner: []int{1, 0, 1, 0, 1}, NProcs: 2}
	local, counts := Remap(part)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	// Element 1 and 3 are proc 0's, in global order -> offsets 0, 1.
	if local[1] != 0 || local[3] != 1 {
		t.Fatalf("proc0 offsets: %v", local)
	}
	if local[0] != 0 || local[2] != 1 || local[4] != 2 {
		t.Fatalf("proc1 offsets: %v", local)
	}
}

func TestTransTableKindsAgree(t *testing.T) {
	// All organizations must return identical translations; only the
	// charged traffic differs.
	part := Block(1000, 4)
	c := sim.NewCluster(sim.DefaultConfig(4))
	globals := []int{0, 999, 500, 250, 750, 3}
	var ref []Loc
	for _, kind := range []TableKind{Replicated, Distributed, Paged} {
		tt := NewTransTable(part, kind)
		got := tt.LookupBatch(c.Proc(1), globals)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%v: lookup %d = %+v, want %+v", kind, i, got[i], ref[i])
			}
		}
	}
}

func TestTransTableTrafficByKind(t *testing.T) {
	part := Block(8192, 4)
	globals := make([]int, 2000)
	rng := rand.New(rand.NewSource(11))
	for i := range globals {
		globals[i] = rng.Intn(8192)
	}
	traffic := func(kind TableKind) int64 {
		c := sim.NewCluster(sim.DefaultConfig(4))
		tt := NewTransTable(part, kind)
		tt.LookupBatch(c.Proc(0), globals)
		m, _ := c.Stats.Totals()
		return m
	}
	if m := traffic(Replicated); m != 0 {
		t.Errorf("replicated table communicated: %d msgs", m)
	}
	if m := traffic(Distributed); m == 0 {
		t.Error("distributed table did not communicate")
	}
	// Paged: second lookup of the same pages is free.
	c := sim.NewCluster(sim.DefaultConfig(4))
	tt := NewTransTable(part, Paged)
	tt.LookupBatch(c.Proc(0), globals)
	m1, _ := c.Stats.Totals()
	tt.LookupBatch(c.Proc(0), globals)
	m2, _ := c.Stats.Totals()
	if m1 == 0 {
		t.Error("paged table cold lookups free")
	}
	if m2 != m1 {
		t.Errorf("paged table re-communicated on warm lookups: %d -> %d", m1, m2)
	}
}

// inspectorWorld runs a collective Inspect over a block partition where
// each processor accesses its own block plus some remote elements.
func inspectorWorld(t *testing.T, n, nprocs int, access func(me int) []int) ([]*Schedule, *sim.Cluster) {
	t.Helper()
	part := Block(n, nprocs)
	tt := NewTransTable(part, Replicated)
	c := sim.NewCluster(sim.DefaultConfig(nprocs))
	scheds := make([]*Schedule, nprocs)
	c.Run(func(p *sim.Proc) {
		scheds[p.ID()] = Inspect(p, 0, access(p.ID()), tt, DefaultInspectorCost())
	})
	return scheds, c
}

func TestInspectorBuildsConsistentSchedules(t *testing.T) {
	const n, np = 64, 4
	scheds, _ := inspectorWorld(t, n, np, func(me int) []int {
		lo, hi := BlockRange(n, np, me)
		var g []int
		for i := lo; i < hi; i++ {
			g = append(g, i, (i+n/2)%n) // own + opposite block
		}
		return g
	})
	for me, sch := range scheds {
		for q, wants := range sch.RecvFrom {
			// What me receives from q must equal what q sends to me.
			peer := scheds[q].SendTo[me]
			if len(wants) != len(peer) {
				t.Fatalf("proc %d <- %d: recv %d != send %d", me, q, len(wants), len(peer))
			}
			for i := range wants {
				if wants[i] != peer[i] {
					t.Fatalf("proc %d <- %d: schedule mismatch at %d", me, q, i)
				}
			}
		}
	}
}

func TestInspectorDedup(t *testing.T) {
	// Accessing the same remote element many times must create one ghost.
	const n, np = 64, 2
	scheds, _ := inspectorWorld(t, n, np, func(me int) []int {
		if me == 0 {
			return []int{40, 40, 40, 40, 40, 0, 1}
		}
		return []int{40, 41}
	})
	if scheds[0].Ghosts != 1 {
		t.Fatalf("proc 0 ghosts = %d, want 1 (dedup)", scheds[0].Ghosts)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n, np = 64, 4
	part := Block(n, np)
	tt := NewTransTable(part, Replicated)
	c := sim.NewCluster(sim.DefaultConfig(np))
	// Global data: element g has value 100+g. Each proc accesses its
	// block plus a shifted window; after gather every accessed slot must
	// hold the right value; after scatter-add of "1 per ghost access"
	// owners see the right totals.
	counts := part.Counts()
	addend := make([]float64, n) // expected scatter contributions per global
	c.Run(func(p *sim.Proc) {
		me := p.ID()
		lo, hi := BlockRange(n, np, me)
		var acc []int
		for i := lo; i < hi; i++ {
			acc = append(acc, i, (i+13)%n)
		}
		sch := Inspect(p, 0, acc, tt, DefaultInspectorCost())
		data := make([]float64, counts[me]+sch.Ghosts)
		for g := 0; g < n; g++ {
			if part.Owner[g] == me {
				data[sch.LocalOf(g)] = 100 + float64(g)
			}
		}
		Gather(p, 1, sch, data, 1, DefaultExecutorCost())
		for _, g := range acc {
			if got := data[sch.LocalOf(g)]; got != 100+float64(g) {
				t.Errorf("proc %d: global %d = %v", me, g, got)
			}
		}
		// Scatter: each proc adds 1 to every accessed element (ghost or
		// owned); owners should see the sum of accesses.
		for i := range data {
			data[i] = 0
		}
		for _, g := range acc {
			data[sch.LocalOf(g)]++
		}
		ScatterAdd(p, 2, sch, data, 1, DefaultExecutorCost())
		// Verify own elements.
		for g := lo; g < hi; g++ {
			want := 1.0 // own access
			if (g-13+n)%n >= 0 {
				// was g accessed as (i+13)%n by some i? exactly once.
				want = 2.0
			}
			if got := data[sch.LocalOf(g)]; got != want {
				t.Errorf("proc %d: scatter global %d = %v, want %v", me, g, got, want)
			}
		}
	})
	_ = addend
}

func TestGatherUsesOneMessagePerPair(t *testing.T) {
	const n, np = 64, 4
	scheds, c := inspectorWorld(t, n, np, func(me int) []int {
		lo, hi := BlockRange(n, np, me)
		var g []int
		for i := lo; i < hi; i++ {
			g = append(g, i, (i+n/np)%n) // each proc needs the next block
		}
		return g
	})
	c.Stats.Reset()
	part := Block(n, np)
	counts := part.Counts()
	c.Run(func(p *sim.Proc) {
		sch := scheds[p.ID()]
		data := make([]float64, counts[p.ID()]+sch.Ghosts)
		Gather(p, 9, sch, data, 1, DefaultExecutorCost())
	})
	cats := c.Stats.Categories()
	// Each proc receives from exactly one peer: np messages total.
	if cats["chaos.gather"].Messages != np {
		t.Fatalf("gather messages = %d, want %d", cats["chaos.gather"].Messages, np)
	}
}

func TestTableKindString(t *testing.T) {
	if Replicated.String() != "replicated" || Distributed.String() != "distributed" || Paged.String() != "paged" {
		t.Fatal("TableKind strings")
	}
}
