// Data and iteration partitioning (§4 of the paper): CHAOS partitions
// data arrays with heuristics based on spatial position or load, and
// partitions loop iterations with the almost-owner-computes rule.
package chaos

import (
	"sort"
)

// Partition assigns each of N global data elements to a processor.
type Partition struct {
	Owner  []int // Owner[g] is the processor owning global element g
	NProcs int
}

// Counts returns the number of elements owned by each processor.
func (p *Partition) Counts() []int {
	c := make([]int, p.NProcs)
	for _, o := range p.Owner {
		c[o]++
	}
	return c
}

// Block partitions n elements into contiguous blocks, one per processor
// (the BLOCK distribution; nbf uses this since its load is uniform).
func Block(n, nprocs int) *Partition {
	owner := make([]int, n)
	for g := 0; g < n; g++ {
		owner[g] = blockOwner(g, n, nprocs)
	}
	return &Partition{Owner: owner, NProcs: nprocs}
}

// blockOwner computes the owner of g under a BLOCK distribution with
// ceiling-sized blocks.
func blockOwner(g, n, nprocs int) int {
	sz := (n + nprocs - 1) / nprocs
	return g / sz
}

// BlockRange returns processor p's element range [lo, hi) under Block.
func BlockRange(n, nprocs, p int) (lo, hi int) {
	sz := (n + nprocs - 1) / nprocs
	lo = p * sz
	hi = lo + sz
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return
}

// Cyclic partitions n elements round-robin (the CYCLIC distribution).
func Cyclic(n, nprocs int) *Partition {
	owner := make([]int, n)
	for g := 0; g < n; g++ {
		owner[g] = g % nprocs
	}
	return &Partition{Owner: owner, NProcs: nprocs}
}

// RCB implements the Recursive Coordinate Bisection partitioner: it
// recursively splits the element set along the coordinate dimension with
// the largest spatial extent, balancing element counts, so that
// spatially close elements (which interact) land on the same processor.
// This is the partitioner both the CHAOS and TreadMarks moldyn programs
// use in the paper.
func RCB(coords [][3]float64, nprocs int) *Partition {
	n := len(coords)
	owner := make([]int, n)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	rcbSplit(coords, ids, 0, nprocs, owner)
	return &Partition{Owner: owner, NProcs: nprocs}
}

// rcbSplit assigns the elements in ids to processors [base, base+count).
func rcbSplit(coords [][3]float64, ids []int, base, count int, owner []int) {
	if count == 1 || len(ids) == 0 {
		for _, id := range ids {
			owner[id] = base
		}
		return
	}
	// Split dimension: largest extent.
	var lo, hi [3]float64
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = coords[ids[0]][d], coords[ids[0]][d]
	}
	for _, id := range ids {
		for d := 0; d < 3; d++ {
			if coords[id][d] < lo[d] {
				lo[d] = coords[id][d]
			}
			if coords[id][d] > hi[d] {
				hi[d] = coords[id][d]
			}
		}
	}
	dim := 0
	for d := 1; d < 3; d++ {
		if hi[d]-lo[d] > hi[dim]-lo[dim] {
			dim = d
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := coords[ids[a]][dim], coords[ids[b]][dim]
		if ca != cb {
			return ca < cb
		}
		return ids[a] < ids[b] // deterministic tie-break
	})
	// Processor counts split as evenly as possible; element counts split
	// proportionally.
	leftProcs := count / 2
	rightProcs := count - leftProcs
	cut := len(ids) * leftProcs / count
	rcbSplit(coords, ids[:cut], base, leftProcs, owner)
	rcbSplit(coords, ids[cut:], base+leftProcs, rightProcs, owner)
}

// AlmostOwnerComputes assigns each iteration to the processor owning the
// majority of the data elements it accesses (ties broken toward the
// first element's owner), returning one iteration list per processor.
// iters[i] lists the global data elements iteration i accesses.
func AlmostOwnerComputes(iters [][]int, part *Partition) [][]int {
	out := make([][]int, part.NProcs)
	for i, elems := range iters {
		o := chooseOwner(elems, part)
		out[o] = append(out[o], i)
	}
	return out
}

// chooseOwner implements the almost-owner-computes rule for a single
// iteration: the owner of the most accessed elements wins, with ties
// going to whichever owner reached that count first (so the first
// element's owner wins a clean tie). Deterministic.
func chooseOwner(elems []int, part *Partition) int {
	if len(elems) == 0 {
		return 0
	}
	count := map[int]int{}
	best := part.Owner[elems[0]]
	count[best] = 0
	for _, e := range elems {
		o := part.Owner[e]
		count[o]++
		if count[o] > count[best] {
			best = o
		}
	}
	return best
}

// Remap is the CHAOS remapping step: it renumbers global elements so
// that each processor's elements are consecutive, returning local
// offsets and per-processor counts. Local[g] is g's offset within its
// owner's block.
func Remap(part *Partition) (local []int32, counts []int) {
	counts = make([]int, part.NProcs)
	local = make([]int32, len(part.Owner))
	for g, o := range part.Owner {
		local[g] = int32(counts[o])
		counts[o]++
	}
	return
}
