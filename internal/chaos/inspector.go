// The inspector and executor (§4). The inspector runs once per
// indirection-array change: it scans the global indices the processor's
// iterations access, eliminates duplicates with a hash table, translates
// the survivors through the translation table, assigns ghost slots for
// off-processor elements, and exchanges send lists so both sides of
// every pair know the communication schedule. The executor then moves
// data with sender-initiated single messages: Gather fetches
// off-processor data into the ghost region, ScatterAdd pushes
// accumulated contributions back to their owners.
package chaos

import (
	"sort"

	"repro/internal/sim"
)

// Schedule is a communication schedule: for each peer, which of the
// peer's local elements we receive (into which ghost slots), and which
// of our local elements we send.
type Schedule struct {
	Me     int
	NProcs int

	// OwnCount is the number of elements this processor owns; ghost
	// slots follow at local indices [OwnCount, OwnCount+Ghosts).
	OwnCount int
	Ghosts   int

	// RecvFrom[q] lists, in ghost-slot order, the q-local indices whose
	// values we receive from q.
	RecvFrom [][]int32
	// RecvSlot[q] lists the ghost slots (our local indices) those values
	// fill; parallel to RecvFrom[q].
	RecvSlot [][]int32
	// SendTo[q] lists our local element indices whose values we send to q.
	SendTo [][]int32

	// localOf maps a global element index to its local slot (owned or
	// ghost) on this processor; -1 if untouched here.
	localOf []int32
}

// MemCatSched is the sim.MemStats category for retained schedule
// storage; MemCatInspector covers the inspector's transient hash table.
const (
	MemCatSched     = "chaos.sched"
	MemCatInspector = "chaos.inspector"
)

// MemBytes returns the modeled storage of the schedule: the global→
// local map plus the per-peer receive/slot/send lists (4 bytes per
// entry each, like the int32s they hold).
func (s *Schedule) MemBytes() int64 {
	b := int64(4 * len(s.localOf))
	for q := 0; q < s.NProcs; q++ {
		b += int64(4 * (len(s.RecvFrom[q]) + len(s.RecvSlot[q]) + len(s.SendTo[q])))
	}
	return b
}

// ReleaseMem returns the schedule's storage charge to the ledger. Call
// it when the schedule is replaced (a re-run inspector) or at teardown.
func (s *Schedule) ReleaseMem(p *sim.Proc) {
	p.Cluster().Mem.Free(p.ID(), MemCatSched, s.MemBytes())
}

// LocalOf returns the local slot of global element g, or -1.
func (s *Schedule) LocalOf(g int) int32 { return s.localOf[g] }

// CommPairs returns the number of peers this processor exchanges data
// with in each direction.
func (s *Schedule) CommPairs() (recvPeers, sendPeers int) {
	for q := 0; q < s.NProcs; q++ {
		if len(s.RecvFrom[q]) > 0 {
			recvPeers++
		}
		if len(s.SendTo[q]) > 0 {
			sendPeers++
		}
	}
	return
}

// InspectorCost models the per-entry costs of the inspector; the paper's
// key observation is that hashing every indirection entry and consulting
// the translation table makes the inspector expensive (6.2–9.2 s for
// moldyn) compared with Validate's page-set scan (0.4–0.8 s).
type InspectorCost struct {
	HashUSPerEntry float64
	BuildUSPerElem float64
	// TranslateAll translates every reference through the table before
	// duplicate elimination — the ordering the paper's measured moldyn
	// program exhibits (its distributed-table inspector exchanged 85 MB
	// in 878 messages, roughly the full reference stream).
	TranslateAll bool
}

// DefaultInspectorCost returns the calibrated cost model.
func DefaultInspectorCost() InspectorCost {
	return InspectorCost{HashUSPerEntry: 0.25, BuildUSPerElem: 0.15}
}

// Inspect builds processor p's communication schedule. globals lists, in
// iteration order and with duplicates, every global data element the
// processor's iterations access; tt supplies translation. Peer send
// lists are exchanged with one message per communicating pair
// ("chaos.sched"). All processors must call Inspect collectively with
// the same tag (a phase id distinguishing successive inspector runs).
func Inspect(p *sim.Proc, tag int, globals []int, tt *TransTable, cost InspectorCost) *Schedule {
	me := p.ID()
	nprocs := p.NProcs()
	n := tt.N()
	inspectT0 := p.Clock()

	if cost.TranslateAll {
		// Translate the raw reference stream (charging the full
		// distributed-table traffic), then dedup.
		tt.LookupBatch(p, globals)
	}

	// Duplicate elimination via a hash table sized to the data array
	// (§4: "a hash table whose size is proportional to the size of the
	// data array is employed to eliminate duplicates"). The table is
	// exactly the transient allocation the paper's memory observation is
	// about, so it is charged (and freed below) — the per-proc peak
	// footprint sees it even though it does not outlive the inspector.
	mem := &p.Cluster().Mem
	mem.Alloc(me, MemCatInspector, int64(n))
	seen := make([]bool, n)
	distinct := make([]int, 0, len(globals))
	for _, g := range globals {
		if !seen[g] {
			seen[g] = true
			distinct = append(distinct, g)
		}
	}
	sort.Ints(distinct)
	p.Advance(cost.HashUSPerEntry * float64(len(globals)))

	// Translate the distinct elements (may communicate, depending on the
	// table organization; already paid above under TranslateAll).
	var locs []Loc
	if cost.TranslateAll {
		locs = tt.LookupLocal(distinct)
	} else {
		locs = tt.LookupBatch(p, distinct)
	}

	sch := &Schedule{
		Me:       me,
		NProcs:   nprocs,
		RecvFrom: make([][]int32, nprocs),
		RecvSlot: make([][]int32, nprocs),
		SendTo:   make([][]int32, nprocs),
		localOf:  make([]int32, n),
	}
	for i := range sch.localOf {
		sch.localOf[i] = -1
	}
	// Owned elements occupy their remapped offsets — all of them, not
	// just the accessed ones, so ghost slots start past the full block.
	own := 0
	for g := 0; g < n; g++ {
		if tt.owner[g] == me {
			sch.localOf[g] = tt.local[g]
			own++
		}
	}
	sch.OwnCount = own
	// Ghost slots for remote elements, grouped by home processor.
	ghost := int32(own)
	for i, g := range distinct {
		if locs[i].Proc == me {
			continue
		}
		q := locs[i].Proc
		sch.RecvFrom[q] = append(sch.RecvFrom[q], locs[i].Off)
		sch.RecvSlot[q] = append(sch.RecvSlot[q], ghost)
		sch.localOf[g] = ghost
		ghost++
	}
	sch.Ghosts = int(ghost) - own
	p.Advance(cost.BuildUSPerElem * float64(len(distinct)))
	mem.Free(me, MemCatInspector, int64(n))

	// Exchange send lists: q must learn which of its elements we want.
	// One message per communicating pair, counted under "chaos.sched".
	type reqMsg struct{ wants []int32 }
	for q := 0; q < nprocs; q++ {
		if q == me {
			continue
		}
		p.Send(q, "chaos.sched", tag, &reqMsg{wants: sch.RecvFrom[q]}, 4*len(sch.RecvFrom[q]))
	}
	p.RecvEach("chaos.sched", tag, nprocs-1, func(from int, payload any) {
		sch.SendTo[from] = payload.(*reqMsg).wants
	})
	// Charge the retained schedule only now that the send lists are in
	// (MemBytes must match what ReleaseMem will free).
	mem.Alloc(me, MemCatSched, sch.MemBytes())
	// Trace annotation: the whole inspector phase (hash, translate,
	// schedule exchange) as one span, sized by the retained schedule.
	p.TraceSpan("chaos.inspect", inspectT0, p.Clock(), sch.MemBytes())
	return sch
}

// ExecutorCost models per-element pack/unpack time in gather/scatter.
type ExecutorCost struct {
	PackUSPerElem float64
}

// DefaultExecutorCost returns the calibrated executor cost.
func DefaultExecutorCost() ExecutorCost { return ExecutorCost{PackUSPerElem: 0.05} }

// Gather fills the ghost region of data from the owners, using one
// sender-initiated message per communicating pair ("chaos.gather") — the
// one-message push the paper contrasts with TreadMarks' two-message
// request/response. data holds width float64 values per element slot,
// layout [owned | ghosts]. All processors must call Gather collectively
// with the same tag (a unique phase id, e.g. the time step).
func Gather(p *sim.Proc, tag int, sch *Schedule, data []float64, width int, cost ExecutorCost) {
	me := sch.Me
	expect := 0
	for q := 0; q < sch.NProcs; q++ {
		if q == me {
			continue
		}
		if len(sch.RecvFrom[q]) > 0 {
			expect++
		}
		if len(sch.SendTo[q]) == 0 {
			continue
		}
		vals := make([]float64, width*len(sch.SendTo[q]))
		for i, li := range sch.SendTo[q] {
			copy(vals[i*width:], data[int(li)*width:int(li)*width+width])
		}
		p.Advance(cost.PackUSPerElem * float64(len(vals)))
		p.Send(q, "chaos.gather", tag, vals, 8*len(vals))
	}
	// Drain in the total message order (not arrival order) so the
	// interleave of causal clock merges and unpack charges — and hence
	// the simulated time — is identical every run.
	p.RecvEach("chaos.gather", tag, expect, func(from int, payload any) {
		vals := payload.([]float64)
		slots := sch.RecvSlot[from]
		for i := range slots {
			copy(data[int(slots[i])*width:int(slots[i])*width+width], vals[i*width:i*width+width])
		}
		p.Advance(cost.PackUSPerElem * float64(len(vals)))
	})
}

// ScatterAdd pushes ghost-slot contributions back to their owners, which
// add them into their elements ("chaos.scatter"); used for the force
// reduction. data holds width float64 values per slot. All processors
// must call ScatterAdd collectively with the same tag.
func ScatterAdd(p *sim.Proc, tag int, sch *Schedule, data []float64, width int, cost ExecutorCost) {
	me := sch.Me
	expect := 0
	for q := 0; q < sch.NProcs; q++ {
		if q == me {
			continue
		}
		if len(sch.SendTo[q]) > 0 {
			expect++
		}
		if len(sch.RecvFrom[q]) == 0 {
			continue
		}
		vals := make([]float64, width*len(sch.RecvFrom[q]))
		for i, slot := range sch.RecvSlot[q] {
			copy(vals[i*width:], data[int(slot)*width:int(slot)*width+width])
		}
		p.Advance(cost.PackUSPerElem * float64(len(vals)))
		p.Send(q, "chaos.scatter", tag, vals, 8*len(vals))
	}
	// Total-order drain: beyond the clock interleave, the additions into
	// data happen in a fixed peer order (the apps' lattice arithmetic is
	// exact so any order agrees bit-for-bit, but the harness should not
	// depend on that).
	p.RecvEach("chaos.scatter", tag, expect, func(from int, payload any) {
		vals := payload.([]float64)
		for i, li := range sch.SendTo[from] {
			for d := 0; d < width; d++ {
				data[int(li)*width+d] += vals[i*width+d]
			}
		}
		p.Advance(cost.PackUSPerElem * float64(len(vals)))
	})
}
