package chaos

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestTableStorageChargedByKind: per-processor table storage lands on
// the ledger at first lookup — the full table under Replicated, the
// home segment otherwise.
func TestTableStorageChargedByKind(t *testing.T) {
	const n, np = 8192, 4
	part := Block(n, np)
	for _, kind := range []TableKind{Replicated, Distributed, Paged} {
		c := sim.NewCluster(sim.DefaultConfig(np))
		tt := NewTransTable(part, kind)
		tt.LookupBatch(c.Proc(1), []int{0})
		snap := c.Mem.Snapshot()
		got := snap[sim.MemKey{Cat: MemCatTable, Proc: 1}].CurBytes
		want := tt.StorageBytes(1)
		if kind == Paged {
			want += tt.pageBytes(0) // index 0's page was cached
		}
		if got != want {
			t.Errorf("%v: charged %d bytes, want %d", kind, got, want)
		}
		// Second lookup must not double-charge the base storage.
		tt.LookupBatch(c.Proc(1), []int{0})
		if again := c.Mem.Snapshot()[sim.MemKey{Cat: MemCatTable, Proc: 1}].CurBytes; again != got {
			t.Errorf("%v: re-lookup moved charge %d -> %d", kind, got, again)
		}
		tt.ReleaseMem(c)
		if err := c.Mem.CheckBalanced(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestPagedCacheEviction: a bounded cache never charges more than its
// bound, evicts FIFO, and the evicted page re-communicates.
func TestPagedCacheEviction(t *testing.T) {
	const n, np = 8192, 4 // 8 table pages, proc 0 owns pages 0-1
	part := Block(n, np)
	c := sim.NewCluster(sim.DefaultConfig(np))
	tt := NewTransTable(part, Paged)
	tt.CachePages = 2
	p := c.Proc(0)

	touch := func(page int) { tt.LookupBatch(p, []int{page * TablePageEntries}) }
	touch(3)
	touch(4)
	touch(5) // evicts page 3
	if tt.cached[0][3] {
		t.Fatal("page 3 not evicted FIFO")
	}
	if !tt.cached[0][4] || !tt.cached[0][5] {
		t.Fatal("wrong page evicted")
	}
	cur := c.Mem.Snapshot()[sim.MemKey{Cat: MemCatTable, Proc: 0}].CurBytes
	if want := tt.StorageBytes(0) + 2*int64(TablePageBytesForTest()); cur != want {
		t.Fatalf("charged %d, want %d (segment + 2 cached pages)", cur, want)
	}

	m1, _ := c.Stats.Totals()
	touch(3) // cold again: must re-communicate (and evict page 4)
	m2, _ := c.Stats.Totals()
	if m2 == m1 {
		t.Fatal("evicted page did not re-communicate")
	}
	tt.ReleaseMem(c)
	if err := c.Mem.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

// TablePageBytesForTest exposes the full-page storage for tests without
// importing internal/mem (which imports this package).
func TablePageBytesForTest() int { return TablePageEntries * TableEntryBytes }

// TestInspectorMemConservation: the hash table is transient (freed
// inside Inspect but visible in the peak), the schedule is retained
// until released, and teardown balances the ledger.
func TestInspectorMemConservation(t *testing.T) {
	const n, np = 4096, 4
	part := Block(n, np)
	c := sim.NewCluster(sim.DefaultConfig(np))
	tt := NewTransTable(part, Distributed)
	scheds := make([]*Schedule, np)
	c.Run(func(p *sim.Proc) {
		lo, hi := BlockRange(n, np, p.ID())
		var globals []int
		for i := lo; i < hi; i++ {
			globals = append(globals, i, (i+37)%n)
		}
		scheds[p.ID()] = Inspect(p, 0, globals, tt, DefaultInspectorCost())
	})
	snap := c.Mem.Snapshot()
	for pr := 0; pr < np; pr++ {
		hash := snap[sim.MemKey{Cat: MemCatInspector, Proc: pr}]
		if hash.CurBytes != 0 || hash.PeakBytes != int64(n) {
			t.Errorf("proc %d: hash cell %+v, want cur 0 peak %d", pr, hash, n)
		}
		sched := snap[sim.MemKey{Cat: MemCatSched, Proc: pr}]
		if sched.CurBytes != scheds[pr].MemBytes() || sched.CurBytes == 0 {
			t.Errorf("proc %d: sched cell %+v, want cur %d", pr, sched, scheds[pr].MemBytes())
		}
	}
	for pr, sch := range scheds {
		sch.ReleaseMem(c.Proc(pr))
	}
	tt.ReleaseMem(c)
	if err := c.Mem.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

// TestPagedEvictionDeterministic: the same lookup program produces the
// same ledger and traffic regardless of which run it is.
func TestPagedEvictionDeterministic(t *testing.T) {
	const n, np = 8192, 4
	part := Block(n, np)
	run := func() (map[sim.MemKey]sim.MemStat, int64, int64) {
		c := sim.NewCluster(sim.DefaultConfig(np))
		tt := NewTransTable(part, Paged)
		tt.CachePages = 3
		c.Run(func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				g := ((p.ID()+1)*1777*i + i*i) % n
				tt.LookupBatch(p, []int{g})
			}
		})
		msgs, bytes := c.Stats.Totals()
		return c.Mem.Snapshot(), msgs, bytes
	}
	refSnap, refMsgs, refBytes := run()
	for i := 0; i < 3; i++ {
		snap, msgs, bytes := run()
		if msgs != refMsgs || bytes != refBytes {
			t.Fatalf("run %d: traffic (%d, %d) != (%d, %d)", i, msgs, bytes, refMsgs, refBytes)
		}
		if !reflect.DeepEqual(snap, refSnap) {
			t.Fatalf("run %d: mem snapshot diverged", i)
		}
	}
}
