package chaos

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLookupLocalAgreesWithBatch(t *testing.T) {
	part := Block(2000, 4)
	tt := NewTransTable(part, Distributed)
	c := sim.NewCluster(sim.DefaultConfig(4))
	globals := []int{0, 1999, 777, 1234}
	batch := tt.LookupBatch(c.Proc(2), globals)
	local := tt.LookupLocal(globals)
	for i := range batch {
		if batch[i] != local[i] {
			t.Fatalf("lookup %d disagrees: %+v vs %+v", i, batch[i], local[i])
		}
	}
	// LookupLocal must be free.
	before, _ := c.Stats.Totals()
	tt.LookupLocal(globals)
	after, _ := c.Stats.Totals()
	if after != before {
		t.Fatal("LookupLocal communicated")
	}
}

func TestPagedTableCachesPerProcessor(t *testing.T) {
	part := Block(8192, 4)
	tt := NewTransTable(part, Paged)
	c := sim.NewCluster(sim.DefaultConfig(4))
	remote := []int{5000, 5001, 5002} // same table page, owned elsewhere
	tt.LookupBatch(c.Proc(0), remote)
	m1, _ := c.Stats.Totals()
	// A different processor's first access must still communicate (the
	// cache is per processor).
	tt.LookupBatch(c.Proc(1), remote)
	m2, _ := c.Stats.Totals()
	if m2 == m1 {
		t.Fatal("paged cache wrongly shared across processors")
	}
	// Proc 0 again: warm.
	tt.LookupBatch(c.Proc(0), remote)
	m3, _ := c.Stats.Totals()
	if m3 != m2 {
		t.Fatal("paged cache not warm on second access")
	}
}

func TestTranslateAllChargesReferenceStream(t *testing.T) {
	part := Block(4096, 4)
	globals := make([]int, 3000)
	for i := range globals {
		globals[i] = (i * 7) % 256 // heavy duplication: dedup pays off
	}
	run := func(all bool) int64 {
		c := sim.NewCluster(sim.DefaultConfig(4))
		tt := NewTransTable(part, Distributed)
		cost := DefaultInspectorCost()
		cost.TranslateAll = all
		c.Run(func(p *sim.Proc) {
			Inspect(p, 0, globals, tt, cost)
		})
		_, bytes := c.Stats.Totals()
		return bytes
	}
	dedup := run(false)
	full := run(true)
	if full <= dedup {
		t.Fatalf("TranslateAll bytes (%d) not above deduped (%d)", full, dedup)
	}
}

func TestChooseOwnerProperty(t *testing.T) {
	// The chosen owner always owns at least as many of the iteration's
	// elements as any other processor.
	f := func(raw [5]uint8, nRaw uint8) bool {
		np := int(nRaw)%4 + 2
		part := Cyclic(64, np)
		elems := make([]int, len(raw))
		for i, r := range raw {
			elems[i] = int(r) % 64
		}
		o := chooseOwner(elems, part)
		count := map[int]int{}
		for _, e := range elems {
			count[part.Owner[e]]++
		}
		for _, c := range count {
			if c > count[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapRoundTripProperty(t *testing.T) {
	// (owner, local) pairs are unique and dense per owner.
	f := func(seed uint8, npRaw uint8) bool {
		np := int(npRaw)%6 + 1
		n := 100
		owner := make([]int, n)
		for i := range owner {
			owner[i] = (i*int(seed+1) + i/7) % np
		}
		part := &Partition{Owner: owner, NProcs: np}
		local, counts := Remap(part)
		seen := map[[2]int32]bool{}
		for g := 0; g < n; g++ {
			k := [2]int32{int32(owner[g]), local[g]}
			if seen[k] {
				return false
			}
			seen[k] = true
			if int(local[g]) >= counts[owner[g]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleCommPairs(t *testing.T) {
	const n, np = 64, 4
	scheds, _ := inspectorWorld(t, n, np, func(me int) []int {
		lo, hi := BlockRange(n, np, me)
		var g []int
		for i := lo; i < hi; i++ {
			g = append(g, i, (i+n/np)%n)
		}
		return g
	})
	for me, sch := range scheds {
		recv, send := sch.CommPairs()
		if recv != 1 || send != 1 {
			t.Errorf("proc %d: comm pairs recv=%d send=%d, want 1/1 (ring)", me, recv, send)
		}
	}
}
