// Package cache is the determinism-powered result cache (DESIGN.md
// §12): a content-addressed in-memory LRU keyed by the SHA-256 of a
// canonical request encoding. Bit-reproducibility (§7/§10) makes every
// simulated result a pure function of its canonically-encoded request,
// so cache coherence holds by construction — there is nothing to
// invalidate, ever; an entry can only be evicted, not stale.
//
// The cache stores opaque values (internal/runner pairs it with
// bench.RunRequest/RunResult) so the dependency points downward:
// bench can compute keys without importing the pool that uses them.
// Cached values are shared across callers and must be treated as
// immutable by everyone who reads them.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/obs"
)

// Registry metrics, aggregated across every LRU in the process (the
// scenario pool's cache and the runner.Default one): the satellite of
// DESIGN.md §13 that makes the per-instance Stats() counters reachable
// from `scenario run -obs`. Entries is a gauge (insert +1, evict -1);
// the rest only grow.
var (
	mHits      = obs.Default().Counter("repro_cache_hits_total", "Result-cache lookups served from memory.")
	mMisses    = obs.Default().Counter("repro_cache_misses_total", "Result-cache lookups that fell through to execution.")
	mEvictions = obs.Default().Counter("repro_cache_evictions_total", "Result-cache entries displaced by LRU pressure.")
	mEntries   = obs.Default().Gauge("repro_cache_entries", "Result-cache entries currently resident, all instances.")
	mBytes     = obs.Default().GaugeVec("repro_cache_bytes",
		"Resident result-cache bytes by tier (approximate for the memory tier, file bytes for disk).", "tier")
	memBytes = mBytes.With("memory")
)

// TierBytesGauge returns the shared repro_cache_bytes series for a
// tier; the disk tier (internal/cache/disk) reports through it so both
// tiers land under one metric family.
func TierBytesGauge(tier string) *obs.Gauge { return mBytes.With(tier) }

// Key is a content address: the SHA-256 of a canonical encoding.
type Key [sha256.Size]byte

// KeyOf hashes a canonical encoding into its content address.
func KeyOf(canonical []byte) Key {
	return sha256.Sum256(canonical)
}

// String renders the key as hex (log and metrics labels).
func (k Key) String() string {
	return hex.EncodeToString(k[:])
}

// Stats is the cache's counter snapshot.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
	Bytes     int64 // sum of PutSized sizes currently resident
}

type entry struct {
	key  Key
	val  any
	size int64
}

// LRU is a fixed-capacity least-recently-used cache. All methods are
// safe for concurrent use; a Get refreshes recency.
type LRU struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
	bytes     int64
}

// New builds an LRU holding at most capacity entries; New panics on a
// non-positive capacity (a zero-capacity cache silently caching
// nothing would make every hit-rate number a lie).
func New(capacity int) *LRU {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &LRU{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached value and whether it was present, counting a
// hit or a miss.
func (c *LRU) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		mMisses.Inc()
		return nil, false
	}
	c.hits++
	mHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts or refreshes a value, evicting the least-recently-used
// entry when the cache is full. Storing under the same key replaces
// the value (with content addressing the two are the same result, so
// this only happens when two computations of one key race). The entry
// is accounted as zero bytes; use PutSized when the value's size is
// known so the repro_cache_bytes gauge means something.
func (c *LRU) Put(k Key, v any) {
	c.PutSized(k, v, 0)
}

// PutSized is Put with the value's approximate resident size attached,
// feeding Stats.Bytes and the memory-tier repro_cache_bytes gauge.
// Capacity is still counted in entries, not bytes — the size is
// accounting, not an eviction policy.
func (c *LRU) PutSized(k Key, v any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry)
		c.bytes += size - e.size
		memBytes.Add(float64(size - e.size))
		e.val, e.size = v, size
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		old := oldest.Value.(*entry)
		delete(c.items, old.key)
		c.bytes -= old.size
		memBytes.Add(-float64(old.size))
		c.evictions++
		mEvictions.Inc()
		mEntries.Dec()
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v, size: size})
	c.bytes += size
	memBytes.Add(float64(size))
	mEntries.Inc()
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Bytes:     c.bytes,
	}
}
