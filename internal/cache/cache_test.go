package cache

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func key(s string) Key { return KeyOf([]byte(s)) }

// TestKeyOf checks the content address is stable for equal bytes and
// distinct for different bytes.
func TestKeyOf(t *testing.T) {
	if key("a") != key("a") {
		t.Error("equal content hashed to different keys")
	}
	if key("a") == key("b") {
		t.Error("different content hashed to the same key")
	}
	if len(key("a").String()) != 64 {
		t.Errorf("hex key length = %d, want 64", len(key("a").String()))
	}
}

// TestGetPut exercises the basic hit/miss path and the counters.
func TestGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key("a"), "va")
	v, ok := c.Get(key("a"))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get = %v, %v, want va, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReplaceSameKey checks a re-Put of an existing key replaces the
// value without growing the cache.
func TestReplaceSameKey(t *testing.T) {
	c := New(2)
	c.Put(key("a"), 1)
	c.Put(key("a"), 2)
	if c.Len() != 1 {
		t.Errorf("Len = %d after same-key re-Put, want 1", c.Len())
	}
	if v, _ := c.Get(key("a")); v.(int) != 2 {
		t.Errorf("value = %v, want the replacement 2", v)
	}
}

// TestLRUEviction fills the cache past capacity and checks the
// least-recently-used entry is the one discarded.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key("a"), "va")
	c.Put(key("b"), "vb")
	c.Get(key("a")) // a is now most-recently used
	c.Put(key("c"), "vc")
	if _, ok := c.Get(key("b")); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Error("recently-used entry a was evicted")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Error("new entry c missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

// TestBytesAccounting checks PutSized feeds Stats.Bytes through
// insert, same-key replacement, and eviction.
func TestBytesAccounting(t *testing.T) {
	c := New(2)
	c.PutSized(key("a"), "va", 100)
	c.PutSized(key("b"), "vb", 30)
	if got := c.Stats().Bytes; got != 130 {
		t.Errorf("Bytes = %d after two inserts, want 130", got)
	}
	c.PutSized(key("b"), "vb2", 50) // replacement: delta, not sum
	if got := c.Stats().Bytes; got != 150 {
		t.Errorf("Bytes = %d after replacement, want 150", got)
	}
	c.PutSized(key("c"), "vc", 7) // evicts a (LRU), -100
	if got := c.Stats().Bytes; got != 57 {
		t.Errorf("Bytes = %d after eviction, want 57", got)
	}
	c.Put(key("d"), "vd") // plain Put accounts zero bytes; evicts b, -50
	if got := c.Stats().Bytes; got != 7 {
		t.Errorf("Bytes = %d after zero-sized insert, want 7", got)
	}
}

// TestBytesGaugeExposed asserts the memory tier's repro_cache_bytes
// series renders in the default registry's exposition — the scrape
// contract the run service's /metrics endpoint relies on.
func TestBytesGaugeExposed(t *testing.T) {
	c := New(2)
	c.PutSized(key("exposed"), "v", 11)
	text := obs.Default().Text()
	if !strings.Contains(text, `repro_cache_bytes{tier="memory"} `) {
		t.Errorf("exposition missing the memory-tier bytes gauge:\n%s", text)
	}
}

// TestBadCapacityPanics checks the constructor rejects a no-op cache.
func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
