package disk

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// pair fabricates a (canonical, payload) entry; the canonical bytes
// only need to be distinct, not real request encodings — the store is
// deliberately byte-level.
func pair(tag string) (canonical, payload []byte) {
	return []byte("runrequest/v1\nexperiment=" + tag + "\n"), []byte(`{"payload":"` + tag + `"}`)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	canon, payload := pair("a")
	k, err := s.Put(canon, payload)
	if err != nil {
		t.Fatal(err)
	}
	if k != cache.KeyOf(canon) {
		t.Error("Put returned a key the canonical bytes do not hash to")
	}
	gc, gp, ok := s.Get(k)
	if !ok {
		t.Fatal("Get missed a just-stored entry")
	}
	if string(gc) != string(canon) || string(gp) != string(payload) {
		t.Errorf("round trip changed bytes: canonical %q payload %q", gc, gp)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats after one put+get: %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(cache.KeyOf([]byte("absent"))); ok {
		t.Fatal("Get hit on an empty store")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

// TestCorruptEntryDroppedAsMiss tampers with a stored file and checks
// the integrity gate: the read reports a miss and deletes the file.
func TestCorruptEntryDroppedAsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	canon, payload := pair("a")
	k, err := s.Put(canon, payload)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+fileSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a payload byte; the digest check must catch it
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(k); ok {
		t.Fatal("Get served a tampered entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("tampered file was not deleted")
	}
	if s.Len() != 0 {
		t.Errorf("entries = %d after dropping the only entry", s.Len())
	}
}

// TestEvictionOrder fills past the byte budget and checks the least
// recently used entries go first, with a Get refreshing recency.
func TestEvictionOrder(t *testing.T) {
	s, err := Open(t.TempDir(), 1) // every put over-budget; sparing the newest leaves exactly one
	if err != nil {
		t.Fatal(err)
	}
	ca, pa := pair("a")
	ka, _ := s.Put(ca, pa)
	cb, pb := pair("b")
	kb, _ := s.Put(cb, pb)
	if s.Len() != 1 {
		t.Fatalf("entries = %d under a 1-byte budget, want 1", s.Len())
	}
	if _, _, ok := s.Get(ka); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, _, ok := s.Get(kb); !ok {
		t.Error("newest entry was evicted")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	ca, pa := pair("a")
	cb, pb := pair("b")
	cc, pc := pair("c")
	budget := int64(2 * (len("reprodisk/v1 00 00 \n") + 64 + len(ca) + len(pa) + 8))
	s, err := Open(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := s.Put(ca, pa)
	kb, _ := s.Put(cb, pb)
	if s.Len() != 2 {
		t.Fatalf("budget %d does not hold two entries (got %d); fix the test arithmetic", budget, s.Len())
	}
	s.Get(ka) // a is now most recent; b should evict when c arrives
	kc, _ := s.Put(cc, pc)
	if _, _, ok := s.Get(kb); ok {
		t.Error("least recently used entry b survived")
	}
	for _, k := range []cache.Key{ka, kc} {
		if _, _, ok := s.Get(k); !ok {
			t.Errorf("entry %s was evicted despite being recent", k)
		}
	}
}

// TestReopenRestoresEntries is the cold-start contract: a new Store
// over an existing directory serves every stored entry with verified
// bytes, in the recency order the mtimes recorded.
func TestReopenRestoresEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, pa := pair("a")
	cb, pb := pair("b")
	ka, _ := s.Put(ca, pa)
	kb, _ := s.Put(cb, pb)
	// Pin distinct mtimes (filesystem granularity would otherwise tie):
	// a older than b.
	old := time.Now().Add(-2 * time.Hour)
	os.Chtimes(filepath.Join(dir, ka.String()+fileSuffix), old, old)

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	gc, gp, ok := s2.Get(ka)
	if !ok || string(gc) != string(ca) || string(gp) != string(pa) {
		t.Errorf("reopened store served wrong bytes for a: ok=%v", ok)
	}
	if _, _, ok := s2.Get(kb); !ok {
		t.Error("reopened store missed b")
	}

	// A third store with a budget for one entry must evict the older
	// file (a) during the opening scan.
	oneBudget := s2.Stats().Bytes/2 + 1
	s3, err := Open(dir, oneBudget)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("budgeted reopen kept %d entries, want 1", s3.Len())
	}
	if _, _, ok := s3.Get(kb); !ok {
		t.Error("budgeted reopen evicted the newer entry instead of the older")
	}
}

// TestDiskSeriesExposed asserts the disk tier's metric series —
// including its leg of the shared repro_cache_bytes family — render
// in the default registry's exposition.
func TestDiskSeriesExposed(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	canon, payload := pair("exposed")
	k, _ := s.Put(canon, payload)
	s.Get(k)
	s.Get(cache.KeyOf([]byte("never stored")))
	text := obs.Default().Text()
	for _, want := range []string{
		`repro_cache_bytes{tier="disk"} `,
		"repro_disk_hits_total ",
		"repro_disk_misses_total ",
		"repro_disk_evictions_total ",
		"repro_disk_entries ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestOpenIgnoresForeignFiles checks the scan adopts only files named
// by a full hex key, leaving anything else untouched.
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "short.run"), []byte("bad name"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("scan adopted %d foreign files", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Error("foreign file was touched")
	}
}
