// Package disk is the result cache's second tier (DESIGN.md §14): a
// content-addressed store of (canonical request, encoded result)
// pairs as files under a root directory, sitting behind the memory
// LRU of internal/cache. The same determinism argument carries over —
// a file's payload is a pure function of the canonical bytes it is
// stored with, so entries are immutable and coherence needs no
// invalidation, only eviction. What disk adds is survival: a process
// restart (or a cold service start) finds the files and serves them
// without re-running anything, which the read-path integrity check
// makes safe — a file only counts as a hit if its canonical bytes
// re-hash to the key it is filed under and its payload matches the
// recorded digest; anything else is deleted and reported as a miss.
package disk

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Registry metrics, aggregated across every Store in the process,
// mirroring the memory tier's set. Bytes reports through the shared
// repro_cache_bytes family under tier="disk".
var (
	mHits      = obs.Default().Counter("repro_disk_hits_total", "Disk-tier lookups served from a verified file.")
	mMisses    = obs.Default().Counter("repro_disk_misses_total", "Disk-tier lookups that found no (valid) file.")
	mEvictions = obs.Default().Counter("repro_disk_evictions_total", "Disk-tier entries removed by size pressure.")
	mEntries   = obs.Default().Gauge("repro_disk_entries", "Disk-tier entries currently resident, all stores.")
	diskBytes  = cache.TierBytesGauge("disk")
)

// fileSuffix names the store's files: <64 hex key chars>.run.
const fileSuffix = ".run"

// header is the file format's first line. The canonical bytes and the
// payload follow back to back; the payload digest makes the result
// half of the file self-verifying (the request half verifies against
// the filename key by re-hashing).
const headerFmt = "reprodisk/v1 %d %d %s\n"

// Stats is the store's counter snapshot.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	MaxBytes  int64 // 0 = unbounded
}

type entry struct {
	key  cache.Key
	size int64
}

// Store is a size-bounded content-addressed file store. All methods
// are safe for concurrent use. Recency is tracked in memory and
// mirrored to file mtimes (best effort) so a reopened store restores
// the LRU order.
type Store struct {
	mu        sync.Mutex
	dir       string
	maxBytes  int64
	order     []*entry // index 0 = least recently used
	items     map[cache.Key]*entry
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// Open creates (if needed) and scans the store's root directory,
// adopting every well-named file already there — the warm-start path.
// File contents are verified lazily on Get, not here, so opening a
// large store is one ReadDir, not a full re-hash. maxBytes <= 0 means
// unbounded.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: opening store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, items: map[cache.Key]*entry{}}

	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: scanning store: %w", err)
	}
	type found struct {
		e     *entry
		mtime time.Time
	}
	var fs []found
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		hexKey := strings.TrimSuffix(name, fileSuffix)
		raw, err := hex.DecodeString(hexKey)
		if err != nil || len(raw) != sha256.Size {
			continue // not ours; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		var k cache.Key
		copy(k[:], raw)
		fs = append(fs, found{&entry{key: k, size: info.Size()}, info.ModTime()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].mtime.Before(fs[j].mtime) })
	for _, f := range fs {
		s.order = append(s.order, f.e)
		s.items[f.e.key] = f.e
		s.bytes += f.e.size
	}
	mEntries.Add(float64(len(fs)))
	diskBytes.Add(float64(s.bytes))
	s.evictOver()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k cache.Key) string {
	return filepath.Join(s.dir, k.String()+fileSuffix)
}

// touch moves e to the most-recently-used end.
func (s *Store) touch(e *entry) {
	for i, o := range s.order {
		if o == e {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), e)
			return
		}
	}
	s.order = append(s.order, e)
}

// remove drops e from the index and deletes its file, crediting the
// counters the caller names.
func (s *Store) remove(e *entry) {
	for i, o := range s.order {
		if o == e {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	delete(s.items, e.key)
	s.bytes -= e.size
	diskBytes.Add(-float64(e.size))
	mEntries.Dec()
	os.Remove(s.path(e.key))
}

// evictOver removes least-recently-used entries until the store fits
// its byte budget, always sparing the most recent entry (a single
// oversized result is better kept than thrashed).
func (s *Store) evictOver() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && len(s.order) > 1 {
		s.remove(s.order[0])
		s.evictions++
		mEvictions.Inc()
	}
}

// Put stores a (canonical, payload) pair under its content address.
// The key is recomputed from the canonical bytes — a caller cannot
// file a result under a key it does not hash to. Writes go through a
// temp file and an atomic rename, so a crash mid-write leaves either
// the old file or none, never a torn one.
func (s *Store) Put(canonical, payload []byte) (cache.Key, error) {
	k := cache.KeyOf(canonical)
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf(headerFmt, len(canonical), len(payload), hex.EncodeToString(sum[:]))
	buf := make([]byte, 0, len(header)+len(canonical)+len(payload))
	buf = append(buf, header...)
	buf = append(buf, canonical...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return k, fmt.Errorf("disk: writing entry: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return k, fmt.Errorf("disk: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return k, fmt.Errorf("disk: writing entry: %w", err)
	}
	if err := os.Rename(tmpName, s.path(k)); err != nil {
		os.Remove(tmpName)
		return k, fmt.Errorf("disk: writing entry: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[k]; ok {
		// Same content address, same bytes (determinism): only the
		// recency and the accounted size can change.
		s.bytes += int64(len(buf)) - e.size
		diskBytes.Add(float64(int64(len(buf)) - e.size))
		e.size = int64(len(buf))
		s.touch(e)
		return k, nil
	}
	e := &entry{key: k, size: int64(len(buf))}
	s.items[k] = e
	s.order = append(s.order, e)
	s.bytes += e.size
	diskBytes.Add(float64(e.size))
	mEntries.Inc()
	s.evictOver()
	return k, nil
}

// Get returns the verified (canonical, payload) pair for a key. A
// missing file is a plain miss; a file that fails any integrity check
// (header shape, canonical re-hash, payload digest) is deleted and
// reported as a miss — the §7 determinism contract means a valid
// entry can always be regenerated by simply re-running the request.
func (s *Store) Get(k cache.Key) (canonical, payload []byte, ok bool) {
	s.mu.Lock()
	e, known := s.items[k]
	s.mu.Unlock()
	if !known {
		s.miss()
		return nil, nil, false
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		s.drop(e)
		return nil, nil, false
	}
	canonical, payload, err = parseEntry(k, raw)
	if err != nil {
		s.drop(e)
		return nil, nil, false
	}

	s.mu.Lock()
	s.hits++
	s.touch(e)
	s.mu.Unlock()
	mHits.Inc()
	// Mirror recency to the filesystem so a reopened store restores
	// the LRU order; purely advisory, so the error is ignored.
	now := time.Now()
	os.Chtimes(s.path(k), now, now)
	return canonical, payload, true
}

// miss counts a lookup that found nothing.
func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	mMisses.Inc()
}

// drop removes a corrupt or unreadable entry and counts a miss. The
// pointer comparison guards against a racing Put that has already
// replaced the entry under the same key — the fresh entry (and its
// freshly-written file) must survive.
func (s *Store) drop(e *entry) {
	s.mu.Lock()
	if cur, still := s.items[e.key]; still && cur == e {
		s.remove(e)
	}
	s.misses++
	s.mu.Unlock()
	mMisses.Inc()
}

// parseEntry validates a file against the key it is filed under.
func parseEntry(k cache.Key, raw []byte) (canonical, payload []byte, err error) {
	nl := -1
	for i, c := range raw {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, nil, fmt.Errorf("disk: missing header line")
	}
	var canonLen, payloadLen int
	var digest string
	n, err := fmt.Sscanf(string(raw[:nl]), "reprodisk/v1 %d %d %s", &canonLen, &payloadLen, &digest)
	if err != nil || n != 3 {
		return nil, nil, fmt.Errorf("disk: malformed header")
	}
	body := raw[nl+1:]
	if canonLen < 0 || payloadLen < 0 || len(body) != canonLen+payloadLen {
		return nil, nil, fmt.Errorf("disk: length mismatch")
	}
	canonical, payload = body[:canonLen], body[canonLen:]
	if cache.KeyOf(canonical) != k {
		return nil, nil, fmt.Errorf("disk: canonical bytes do not hash to the filename key")
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, nil, fmt.Errorf("disk: payload digest mismatch")
	}
	return canonical, payload, nil
}

// Len returns the current entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   len(s.order),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
	}
}
